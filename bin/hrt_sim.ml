(* Command-line driver for the hard real-time scheduling simulator.

   Subcommands:
     list                     enumerate reproducible experiments
     run <names...>           run experiments (figures/ablations) by name
                              (no names + --inject: mixed-criticality demo)
     all                      run everything
     bsp [options]            run one BSP benchmark configuration
     missrate [options]       run one period/slice miss-rate point
     sweepbench [names...]    time sweeps at jobs=1 vs --jobs, emit JSON
     verify <trace.json>      replay a recorded trace through the verifier
     faults                   list the named fault-injection plans
     lint [paths...]          run the source-level invariant checker
     admit query <specs...>   analytical schedulability verdict + certificate
     admit batch <file>       memoized batch analysis of many task sets
     admit cross-validate     oracle vs simulator corpus agreement
     admitbench               admission-service throughput, emit JSON
     serve [--client]         admission serving daemon / one-shot client
     servebench               end-to-end serving throughput, emit JSON

   Every workload runs inside an explicit Exp.Ctx.t built from the common
   flags (--full, --policy, --jobs, --inject/--intensity/--no-degrade)
   plus the observability sink; there is no ambient mutable configuration.

   Exit codes: 0 success, 2 verification failure (verify subcommand or
   --selfcheck) or sweepbench divergence, anything else is a usage/IO
   error. *)

open Cmdliner
open Hrt_engine
open Hrt_core
open Hrt_harness

let scale_term =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale parameters (slow).")
  in
  Term.(
    const (fun full -> if full then Exp.Full else Exp.scale_of_env ()) $ full)

let policy_term =
  Arg.(
    value
    & opt (enum [ ("edf", Config.Edf); ("rm", Config.Rm) ]) Config.Edf
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Scheduling policy: $(b,edf) (earliest deadline first, the \
           paper's) or $(b,rm) (rate monotonic with the Liu-Layland \
           admission bound). Drives both admission and dispatch.")

let jobs_term =
  let arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Fan sweep points across $(docv) OCaml domains. Results are \
             merged in submission order, so the output is bit-identical \
             for any $(docv). Defaults to $(b,HRT_JOBS), else 1 \
             (sequential).")
  in
  Term.(
    const (fun j -> match j with Some n -> n | None -> Exp.jobs_of_env ())
    $ arg)

(* ---- fault injection ---- *)

let inject_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"PLAN"
        ~doc:
          "Arm the named fault plan (see $(b,hrt_sim faults)) on every \
           system the workload boots. Graceful degradation is enabled by \
           default while injecting; turn it off with $(b,--no-degrade).")

let intensity_term =
  Arg.(
    value & opt float 1.0
    & info [ "intensity" ] ~docv:"F"
        ~doc:
          "Scale the injected plan's severity: event rates and magnitudes \
           multiply by $(docv) (1.0 = nominal, 0 = no faults).")

let no_degrade_term =
  Arg.(
    value & flag
    & info [ "no-degrade" ]
        ~doc:
          "Disable graceful degradation (criticality-ordered load \
           shedding) while injecting faults, reproducing the unprotected \
           overload behaviour.")

(* Resolve the three flags into (plan option, degradation flag). *)
let resolve_fault inject intensity no_degrade =
  match inject with
  | None -> (None, false)
  | Some name -> (
    match Hrt_fault.Fault.of_name ~intensity name with
    | Some plan -> (Some plan, not no_degrade)
    | None ->
      Printf.eprintf "unknown fault plan %S; try `hrt_sim faults`\n" name;
      exit 1)

(* ---- observability ---- *)

let trace_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record every scheduler event and write a Chrome-trace JSON file \
           to $(docv) (loadable in chrome://tracing or Perfetto).")

let metrics_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the derived metrics registry as CSV to $(docv).")

let selfcheck_term =
  Arg.(
    value & flag
    & info [ "selfcheck" ]
        ~doc:
          "Run the trace invariant verifier online while the workload \
           executes. Prints a one-line machine-readable verdict on stderr; \
           any violation (including a deadline miss of an admitted \
           real-time task) makes the process exit with status 2.")

(* Build a sink for the requested outputs, hand it to the workload (which
   threads it through its run context), then export whatever was
   requested. Under --selfcheck a verifying checker subscribes to the same
   sink; its verdict decides the exit status. *)
let with_obs ?(selfcheck = false) ~trace_out ~metrics_out f =
  let sink =
    match (selfcheck, trace_out, metrics_out) with
    | false, None, None -> Hrt_obs.Sink.null
    | _ -> Hrt_obs.Sink.create ~trace:(trace_out <> None) ()
  in
  let live =
    if selfcheck then Some (Hrt_verify.Live.attach sink) else None
  in
  f sink;
  (match trace_out with
  | Some path ->
    (match Hrt_obs.Sink.tracer sink with
    | Some tr ->
      Hrt_obs.Export.write_chrome_trace tr ~path;
      Printf.printf "wrote %s (%d events)\n" path (Hrt_obs.Tracer.length tr)
    | None -> ())
  | None -> ());
  (match metrics_out with
  | Some path ->
    Hrt_obs.Export.write_metrics_csv (Hrt_obs.Sink.metrics sink) ~path;
    Printf.printf "wrote %s\n" path
  | None -> ());
  match live with
  | None -> ()
  | Some live ->
    let report = Hrt_verify.Live.report live in
    Printf.eprintf "%s\n%!" (Hrt_verify.Report.verdict_line report);
    if not (Hrt_verify.Report.passed report) then exit 2

(* ---- list ---- *)

let list_cmd =
  let doc = "List the reproducible experiments." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-18s %s\n" e.Registry.name e.Registry.title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let doc =
    "Run experiments by name (see $(b,list)); with $(b,--inject) and no \
     names, run the mixed-criticality fault demo."
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME"
          ~doc:
            "Experiment name. May be omitted when $(b,--inject) is given, \
             which runs the graceful-degradation demo workload instead.")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into $(docv).")
  in
  let demo ~sink ~scale ~policy ~fault ~degrade =
    let horizon =
      match scale with Exp.Quick -> Time.ms 50 | Exp.Full -> Time.ms 500
    in
    let out =
      Fault_sweep.run_demo ~sink ~seed:42L ~policy ~degrade ~fault ~horizon ()
    in
    Printf.printf
      "fault demo (policy=%s degrade=%b):\n\
      \  high-criticality: arrivals=%d misses=%d\n\
      \  low-criticality:  arrivals=%d misses=%d\n\
      \  sheds=%d recovers=%d final-boundary=%d\n"
      (Config.policy_name policy) degrade out.Fault_sweep.hi_arrivals
      out.Fault_sweep.hi_misses out.Fault_sweep.lo_arrivals
      out.Fault_sweep.lo_misses out.Fault_sweep.sheds
      out.Fault_sweep.recovers out.Fault_sweep.boundary
  in
  let run scale csv_dir trace_out metrics_out selfcheck policy jobs inject
      intensity no_degrade names =
    let fault, degrade = resolve_fault inject intensity no_degrade in
    if names = [] && fault = None then begin
      Printf.eprintf "run: missing experiment NAME (or --inject for the demo)\n";
      exit 1
    end;
    with_obs ~selfcheck ~trace_out ~metrics_out (fun sink ->
        if names = [] then demo ~sink ~scale ~policy ~fault ~degrade
        else begin
          let ctx =
            Exp.Ctx.make ~scale ~policy ~sink ~jobs ?fault ~degrade ()
          in
          List.iter
            (fun name ->
              match Registry.find name with
              | Some e -> (
                Registry.run_and_print ~ctx e;
                match csv_dir with
                | None -> ()
                | Some dir ->
                  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                  List.iteri
                    (fun i table ->
                      let path =
                        Filename.concat dir (Printf.sprintf "%s-%d.csv" name i)
                      in
                      Hrt_stats.Csv.write ~path
                        ~header:(Hrt_stats.Table.headers table)
                        (Hrt_stats.Table.to_rows table);
                      Printf.printf "wrote %s\n" path)
                    (e.Registry.run ctx))
              | None ->
                Printf.eprintf "unknown experiment %S; try `hrt_sim list`\n"
                  name;
                exit 1)
            names
        end)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ scale_term $ csv_dir $ trace_out_term $ metrics_out_term
      $ selfcheck_term $ policy_term $ jobs_term $ inject_term
      $ intensity_term $ no_degrade_term $ names)

(* ---- all ---- *)

let all_cmd =
  let doc = "Run every experiment (the full evaluation section)." in
  let run scale trace_out metrics_out selfcheck policy jobs =
    with_obs ~selfcheck ~trace_out ~metrics_out (fun sink ->
        let ctx = Exp.Ctx.make ~scale ~policy ~sink ~jobs () in
        List.iter (Registry.run_and_print ~ctx) Registry.all)
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ scale_term $ trace_out_term $ metrics_out_term
      $ selfcheck_term $ policy_term $ jobs_term)

(* ---- bsp ---- *)

let bsp_cmd =
  let doc = "Run one BSP benchmark configuration." in
  let cpus =
    Arg.(value & opt int 24 & info [ "cpus" ] ~doc:"Worker CPUs (paper: 255).")
  in
  let grain =
    Arg.(
      value
      & opt (enum [ ("fine", `Fine); ("coarse", `Coarse) ]) `Fine
      & info [ "grain" ] ~doc:"Granularity: fine or coarse.")
  in
  let barrier =
    Arg.(value & flag & info [ "barrier" ] ~doc:"Keep the per-iteration barrier.")
  in
  let aperiodic =
    Arg.(
      value & flag
      & info [ "aperiodic" ] ~doc:"Non-real-time scheduling (implies --barrier).")
  in
  let period_us =
    Arg.(value & opt int 100 & info [ "period" ] ~doc:"Period in us (RT mode).")
  in
  let slice_pct =
    Arg.(value & opt int 90 & info [ "slice" ] ~doc:"Slice as % of period.")
  in
  let iters =
    Arg.(value & opt int 500 & info [ "iters" ] ~doc:"BSP iterations.")
  in
  let run cpus grain barrier aperiodic period_us slice_pct iters policy
      trace_out metrics_out selfcheck =
    with_obs ~selfcheck ~trace_out ~metrics_out (fun sink ->
        let params =
          match grain with
          | `Fine -> Hrt_bsp.Bsp.fine_grain ~cpus ~barrier:(barrier || aperiodic)
          | `Coarse ->
            Hrt_bsp.Bsp.coarse_grain ~cpus ~barrier:(barrier || aperiodic)
        in
        let params = { params with Hrt_bsp.Bsp.iters } in
        let mode =
          if aperiodic then Hrt_bsp.Bsp.Aperiodic
          else begin
            let period = Time.us period_us in
            let slice =
              Int64.div (Int64.mul period (Int64.of_int slice_pct)) 100L
            in
            Hrt_bsp.Bsp.Rt { period; slice; phase_correction = true }
          end
        in
        let r = Hrt_bsp.Bsp.run ~policy ~obs:sink params mode in
        Printf.printf
          "exec=%.3f ms  iterations=%d  misses=%d  admitted=%b  checksum=%.0f\n"
          (Time.to_float_ms r.Hrt_bsp.Bsp.exec_time)
          r.Hrt_bsp.Bsp.iterations_done r.Hrt_bsp.Bsp.misses
          r.Hrt_bsp.Bsp.admitted r.Hrt_bsp.Bsp.checksum)
  in
  Cmd.v (Cmd.info "bsp" ~doc)
    Term.(
      const run $ cpus $ grain $ barrier $ aperiodic $ period_us $ slice_pct
      $ iters $ policy_term $ trace_out_term $ metrics_out_term
      $ selfcheck_term)

(* ---- missrate ---- *)

let missrate_cmd =
  let doc = "Measure miss rate for one periodic constraint." in
  let platform =
    Arg.(
      value
      & opt (enum [ ("phi", Hrt_hw.Platform.phi); ("r415", Hrt_hw.Platform.r415) ])
          Hrt_hw.Platform.phi
      & info [ "platform" ] ~doc:"phi or r415.")
  in
  let period_us =
    Arg.(value & opt int 100 & info [ "period" ] ~doc:"Period in us.")
  in
  let slice_pct =
    Arg.(value & opt int 50 & info [ "slice" ] ~doc:"Slice as % of period.")
  in
  let ms =
    Arg.(value & opt int 100 & info [ "duration" ] ~doc:"Simulated ms to run.")
  in
  let run platform period_us slice_pct ms policy inject intensity no_degrade
      trace_out metrics_out selfcheck =
    let fault, degrade = resolve_fault inject intensity no_degrade in
    with_obs ~selfcheck ~trace_out ~metrics_out (fun sink ->
        let config =
          {
            Config.default with
            Config.admission_control = false;
            policy;
            degradation = degrade;
          }
        in
        let sys = Scheduler.create ~num_cpus:2 ~config ~obs:sink platform in
        let period = Time.us period_us in
        let slice =
          Int64.div (Int64.mul period (Int64.of_int slice_pct)) 100L
        in
        ignore (Exp.periodic_thread sys ~cpu:1 ~period ~slice ());
        (match fault with
        | Some plan -> Hrt_fault.Fault.inject plan sys
        | None -> ());
        Scheduler.run ~until:(Time.ms ms) sys;
        let acc = Local_sched.account (Scheduler.sched sys 1) in
        Printf.printf
          "platform=%s period=%dus slice=%d%%: arrivals=%d misses=%d \
           rate=%.1f%% mean-miss=%.2fus\n"
          platform.Hrt_hw.Platform.name period_us slice_pct
          (Account.arrivals acc) (Account.misses acc)
          (100. *. Account.miss_rate acc)
          (Hrt_stats.Summary.mean (Account.miss_times_us acc)))
  in
  Cmd.v (Cmd.info "missrate" ~doc)
    Term.(
      const run $ platform $ period_us $ slice_pct $ ms $ policy_term
      $ inject_term $ intensity_term $ no_degrade_term $ trace_out_term
      $ metrics_out_term $ selfcheck_term)

(* ---- sweepbench ---- *)

let sweepbench_cmd =
  let doc = "Time sweeps sequentially vs parallel and check determinism." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs each named experiment twice — once at jobs=1 and once at \
         $(b,--jobs) — and records wall time, speedup, and whether the \
         rendered tables are byte-identical (they must be: parallel \
         sweeps merge results by submission index). The samples are \
         written as JSON to $(b,--out) for CI to archive.";
      `P
        "Exit status is 2 when any sweep's parallel output diverges from \
         its sequential output.";
    ]
  in
  let names =
    Arg.(
      value
      & pos_all string [ "fig13" ]
      & info [] ~docv:"NAME"
          ~doc:"Experiments to benchmark (default: fig13).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_sweep.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON artifact.")
  in
  let run scale policy jobs out names =
    let ctx = Exp.Ctx.make ~scale ~policy ~jobs () in
    let entries =
      List.map
        (fun name ->
          match Registry.find name with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown experiment %S; try `hrt_sim list`\n" name;
            exit 1)
        names
    in
    let samples =
      List.map
        (fun e ->
          let s = Bench_sweep.measure ~ctx e in
          Printf.printf
            "%-18s seq=%.2fs  par(jobs=%d)=%.2fs  speedup=%.2fx  \
             identical=%b\n%!"
            s.Bench_sweep.name s.Bench_sweep.seq_seconds s.Bench_sweep.jobs
            s.Bench_sweep.par_seconds s.Bench_sweep.speedup
            s.Bench_sweep.identical;
          s)
        entries
    in
    Bench_sweep.write ~path:out ~jobs:ctx.Exp.Ctx.jobs samples;
    Printf.printf "wrote %s\n" out;
    if List.exists (fun s -> not s.Bench_sweep.identical) samples then begin
      Printf.eprintf
        "sweepbench: parallel output diverges from sequential output\n";
      exit 2
    end
  in
  Cmd.v (Cmd.info "sweepbench" ~doc ~man)
    Term.(const run $ scale_term $ policy_term $ jobs_term $ out $ names)

(* ---- enginebench ---- *)

let enginebench_cmd =
  let doc = "Benchmark the engine core: timing wheel vs reference heap." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Drives three self-rescheduling workloads through the event core — \
         the current timing-wheel engine with cached actions, the same \
         engine with a fresh closure per event, and the original \
         binary-heap-plus-closures core — reporting events/sec and minor \
         words allocated per event for each, plus a fixed-population churn \
         pass that locates the wheel-vs-heap ns/op crossover. The result \
         is written as JSON to $(b,--out).";
      `P
        "With $(b,--check-against), the measured wheel throughput is \
         compared to a committed baseline artifact and the exit status is \
         2 when it regresses by more than $(b,--tolerance).";
    ]
  in
  let events =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "events" ] ~docv:"N" ~doc:"Events per workload.")
  in
  let sources =
    Arg.(
      value
      & opt int 512
      & info [ "sources" ] ~docv:"N"
          ~doc:"Concurrent event sources (steady-state queue depth).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_engine.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON artifact.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Small sizes for smoke-testing the harness (CI check.sh).")
  in
  let check_against =
    Arg.(
      value
      & opt (some file) None
      & info [ "check-against" ] ~docv:"FILE"
          ~doc:"Committed baseline artifact to gate against.")
  in
  let tolerance =
    Arg.(
      value
      & opt float 0.2
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:"Allowed fractional events/sec regression (default 0.2).")
  in
  let run events sources out quick check_against tolerance =
    let events, sources, churn_ops =
      if quick then (120_000, 256, 40_000) else (events, sources, 200_000)
    in
    let r = Hrt_harness.Engine_bench.measure ~events ~sources ~churn_ops in
    List.iter
      (fun s ->
        Printf.printf "%-16s %9.0f events/s  %6.2f minor words/event\n%!"
          s.Hrt_harness.Engine_bench.name
          s.Hrt_harness.Engine_bench.events_per_sec
          s.Hrt_harness.Engine_bench.minor_words_per_event)
      r.Hrt_harness.Engine_bench.samples;
    Printf.printf "speedup vs heap baseline: %.2fx\n"
      r.Hrt_harness.Engine_bench.speedup;
    List.iter
      (fun c ->
        Printf.printf "churn n=%-6d wheel %6.1f ns/op  heap %6.1f ns/op\n"
          c.Hrt_harness.Engine_bench.size
          c.Hrt_harness.Engine_bench.wheel_ns_per_op
          c.Hrt_harness.Engine_bench.heap_ns_per_op)
      r.Hrt_harness.Engine_bench.crossovers;
    Hrt_harness.Engine_bench.write r ~path:out;
    Printf.printf "wrote %s\n" out;
    match check_against with
    | None -> ()
    | Some path -> (
      match Hrt_harness.Engine_bench.check_against r ~path ~tolerance with
      | Ok base ->
        Printf.printf "baseline %s: %.0f events/s, within tolerance\n" path base
      | Error msg ->
        Printf.eprintf "enginebench: %s\n" msg;
        exit 2)
  in
  Cmd.v (Cmd.info "enginebench" ~doc ~man)
    Term.(
      const run $ events $ sources $ out $ quick $ check_against $ tolerance)

(* ---- verify ---- *)

let verify_cmd =
  let doc = "Replay a recorded trace through the invariant verifier." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses a Chrome-trace JSON file written by $(b,--trace-out) and \
         checks every scheduler invariant in the catalog: time \
         monotonicity, event causality, per-CPU mutual exclusion, hard \
         real-time soundness, EDF/RM policy conformance, accounting \
         conservation, and group barrier/election safety.";
      `P
        "The full report goes to stdout; a one-line machine-readable \
         verdict goes to stderr. Exit status is 0 when the trace is clean, \
         2 when any rule fired, and 1 when the file cannot be parsed.";
    ]
  in
  let trace =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Chrome-trace JSON file to verify.")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the full verdict report to $(docv).")
  in
  let run trace report_out =
    match Hrt_verify.Verify.file trace with
    | Error msg ->
      Printf.eprintf "hrt_sim verify: %s: %s\n" trace msg;
      exit 1
    | Ok report ->
      print_string (Hrt_verify.Report.to_string report);
      (match report_out with
      | Some path ->
        Hrt_verify.Report.write report ~path;
        Printf.printf "wrote %s\n" path
      | None -> ());
      Printf.eprintf "%s\n%!" (Hrt_verify.Report.verdict_line report);
      if not (Hrt_verify.Report.passed report) then exit 2
  in
  Cmd.v (Cmd.info "verify" ~doc ~man) Term.(const run $ trace $ report_out)

(* ---- faults ---- *)

let faults_cmd =
  let doc = "List the named fault-injection plans." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Fault plans compose hardware interference (SMI storms, interrupt \
         bursts, clock steps, timer jitter) and task-level faults (WCET \
         overruns, release jitter) into named, seeded scenarios. Arm one \
         with $(b,--inject) on $(b,run) or $(b,missrate); scale it with \
         $(b,--intensity).";
    ]
  in
  let run () =
    List.iter
      (fun p ->
        Printf.printf "%-16s %s\n" p.Hrt_fault.Fault.Plan.name
          (Hrt_fault.Fault.describe p))
      Hrt_fault.Fault.builtins
  in
  Cmd.v (Cmd.info "faults" ~doc ~man) Term.(const run $ const ())

(* ---- lint ---- *)

let lint_cmd =
  let doc = "Run the source-level invariant checker over the tree." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every $(b,.ml) file under the given paths and checks the \
         three rule families from DESIGN.md section 10: domain-safety \
         (module-toplevel mutable state in code reachable from parallel \
         jobs), determinism (wall-clock, ambient entropy, hash-order and \
         float polymorphic-compare dependence), and hot-path allocation \
         (construction and closure captures inside $(b,[@@@hrt.hot]) \
         regions).";
      `P
        "Findings can be waived in-source with \
         [@hrt.unsynchronized]/[@hrt.nondet]/[@hrt.alloc_ok] attributes \
         carrying a reason string; the committed $(b,.hrt-lint) file \
         scopes the families and caps the waiver counts. Exit status is 0 \
         when clean, 1 on unwaived findings, 2 on usage errors. The \
         standalone $(b,hrt_lint) binary is the same engine.";
    ]
  in
  let config_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "config" ] ~docv:"FILE"
          ~doc:"Lint configuration (default: $(i,root)/.hrt-lint).")
  in
  let root =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~docv:"DIR"
          ~doc:"Repository root (default: nearest ancestor with .hrt-lint).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Also print waived findings.")
  in
  let summary_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "summary" ] ~docv:"FILE"
          ~doc:"Also write the machine-readable summary line to $(docv).")
  in
  let paths =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATHS"
          ~doc:"Root-relative files or directories (default: lib bin).")
  in
  let run config_file root verbose summary_file paths =
    let fail msg =
      Printf.eprintf "hrt_sim lint: %s\n" msg;
      exit 2
    in
    let root =
      match (root, config_file) with
      | Some r, _ -> r
      | None, Some cf -> Filename.dirname cf
      | None, None -> (
        match Hrt_lint.Driver.find_root (Sys.getcwd ()) with
        | Some r -> r
        | None -> fail "no .hrt-lint found in any ancestor directory; pass --root")
    in
    let config_file =
      match config_file with
      | Some cf -> cf
      | None -> Filename.concat root ".hrt-lint"
    in
    let config =
      match Hrt_lint.Config.load config_file with
      | Ok c -> c
      | Error m -> fail m
    in
    let paths = match paths with [] -> [ "lib"; "bin" ] | ps -> ps in
    let report = Hrt_lint.Driver.run ~config ~root paths in
    Hrt_lint.Driver.render ~verbose stdout report;
    (match summary_file with
    | Some f ->
      Out_channel.with_open_text f (fun oc ->
          output_string oc (Hrt_lint.Driver.summary_line report ^ "\n"))
    | None -> ());
    if not (Hrt_lint.Driver.clean report) then exit 1
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(const run $ config_file $ root $ verbose $ summary_file $ paths)

(* ---- admit ---- *)

(* Task specs on the admit command line: P:<period_us>:<slice_us> for a
   periodic task, S:<size_us>:<deadline_us> for a sporadic one (deadline
   relative to its arrival), A for an aperiodic filler. The grammar is
   shared with the serving protocol (Hrt_serve.Protocol). *)
let parse_spec s =
  Result.map_error (fun m -> `Msg m) (Hrt_serve.Protocol.parse_spec s)

let spec_conv =
  Arg.conv ((fun s -> parse_spec s), fun fmt c -> Constraints.pp fmt c)

let platform_term =
  Arg.(
    value
    & opt (enum [ ("phi", Hrt_hw.Platform.phi); ("r415", Hrt_hw.Platform.r415) ])
        Hrt_hw.Platform.phi
    & info [ "platform" ] ~docv:"NAME"
        ~doc:
          "Platform whose measured scheduler costs are charged per arrival \
           ($(b,phi) or $(b,r415)).")

let raw_term =
  Arg.(
    value & flag
    & info [ "raw" ]
        ~doc:
          "Analyze raw feasibility instead of the production admission \
           view: full CPU (util limit 1.0, reservations off) and zero \
           scheduler overhead. A rejection under $(b,--raw) with an exact \
           certificate means no schedule exists at all.")

(* The Taskset a query analyzes: the production view mirrors the ledger
   the scheduler boots with (79% periodic capacity, platform overhead).
   Both views live in Hrt_analysis.Taskset so the serving daemon answers
   from exactly the same analysis. *)
let admit_taskset ~policy ~platform ~raw tasks =
  if raw then Hrt_analysis.Taskset.raw_view ~policy tasks
  else Hrt_analysis.Taskset.production_view ~policy ~platform tasks

let print_result r =
  Format.printf "%a@." Hrt_analysis.Oracle.pp_result r

let admit_query_cmd =
  let doc = "Analyze one task set: verdict, headroom, and certificate." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the exact schedulability test for the chosen policy — \
         processor-demand analysis over the hyperperiod for $(b,edf), the \
         Lehoczky-Sha-Ding scheduling-point criterion for $(b,rm), plus \
         the density test for sporadic specs — and prints the verdict \
         with the certificate that proves it. The certificate is replayed \
         through the independent checker before the command returns.";
      `P
        "Exit status is 0 when the set is admitted, 1 when it is \
         rejected, and 3 if the certificate fails to replay (an oracle \
         bug).";
    ]
  in
  let specs =
    Arg.(
      non_empty & pos_all spec_conv []
      & info [] ~docv:"SPEC"
          ~doc:
            "Task specs: $(b,P:period_us:slice_us), \
             $(b,S:size_us:deadline_us), or $(b,A).")
  in
  let run policy platform raw specs =
    let ts = admit_taskset ~policy ~platform ~raw specs in
    let r = Hrt_analysis.Oracle.analyze ts in
    print_result r;
    (match Hrt_analysis.Oracle.check ts r with
    | Ok () -> Printf.printf "certificate: replays ok\n"
    | Error msg ->
      Printf.eprintf "admit: certificate failed to replay: %s\n" msg;
      exit 3);
    if not (Admission.admitted r.Hrt_analysis.Oracle.verdict) then exit 1
  in
  Cmd.v (Cmd.info "query" ~doc ~man)
    Term.(const run $ policy_term $ platform_term $ raw_term $ specs)

let admit_batch_cmd =
  let doc = "Analyze many task sets through the memoized service." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one task set per line (whitespace-separated SPECs, \
         $(b,#) comments and blank lines skipped) and answers each line \
         with its verdict. Queries go through the sharded memo cache — \
         permutations of an already-analyzed set are hits — and fan \
         across $(b,--jobs) domains; the answers are byte-identical for \
         any job count. Cache hit/miss/eviction counters are printed at \
         the end (and exported as $(b,admit.cache.*) metrics with \
         $(b,--metrics-out)).";
    ]
  in
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Task-set file ($(b,-) for stdin).")
  in
  let run policy platform raw jobs metrics_out file =
    let ic = if file = "-" then stdin else open_in file in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> if file <> "-" then close_in ic);
    let sets =
      List.rev_map String.trim !lines
      |> List.filter (fun line -> line <> "" && line.[0] <> '#')
      |> List.mapi (fun i line ->
             let specs =
               String.split_on_char ' ' line
               |> List.filter (fun t -> t <> "")
               |> List.map (fun t ->
                      match parse_spec t with
                      | Ok c -> c
                      | Error (`Msg m) ->
                        Printf.eprintf "admit batch: set %d: %s\n" (i + 1) m;
                        exit 2)
             in
             admit_taskset ~policy ~platform ~raw specs)
    in
    let svc = Hrt_analysis.Service.create () in
    with_obs ~trace_out:None ~metrics_out (fun sink ->
        if Hrt_obs.Sink.enabled sink then
          Hrt_analysis.Service.register_probes svc sink;
        let results =
          if jobs > 1 then
            Hrt_analysis.Service.batch
              ~pool:(Hrt_par.Par.Pool.create ~jobs)
              svc sets
          else Hrt_analysis.Service.batch svc sets
        in
        List.iteri
          (fun i r ->
            Format.printf "set %d: %a@." (i + 1) Admission.pp_verdict
              r.Hrt_analysis.Oracle.verdict)
          results;
        let s = Hrt_analysis.Service.stats svc in
        Printf.printf "cache: %d hits / %d misses / %d evictions (%d entries)\n"
          s.Hrt_analysis.Service.hits s.Hrt_analysis.Service.misses
          s.Hrt_analysis.Service.evictions s.Hrt_analysis.Service.entries;
        if Hrt_obs.Sink.enabled sink then Hrt_obs.Sink.sample_probes sink)
  in
  Cmd.v (Cmd.info "batch" ~doc ~man)
    Term.(
      const run $ policy_term $ platform_term $ raw_term $ jobs_term
      $ metrics_out_term $ file)

let admit_xval_cmd =
  let doc = "Cross-validate the oracle against the simulator." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs randomized periodic task sets through both the analytical \
         oracle and the discrete-event simulator (synchronous release, \
         admission control off) and asserts the feasibility corridor: \
         oracle-admitted sets never miss a deadline, and sets the oracle \
         proves infeasible always do. Every certificate is replayed \
         through the independent checker, and the EDF oracle is compared \
         verdict-for-verdict against the runtime Hyperperiod_sim ledger.";
      `P "Exit status is 2 when any disagreement is found.";
    ]
  in
  let sets =
    Arg.(
      value & opt int 200
      & info [ "sets" ] ~docv:"N" ~doc:"Randomized task sets per policy.")
  in
  let policies =
    Arg.(
      value
      & opt
          (enum
             [
               ("both", [ Config.Edf; Config.Rm ]);
               ("edf", [ Config.Edf ]);
               ("rm", [ Config.Rm ]);
             ])
          [ Config.Edf; Config.Rm ]
      & info [ "policies" ] ~docv:"WHICH"
          ~doc:"Policies to validate: $(b,both) (default), $(b,edf), $(b,rm).")
  in
  let run scale jobs sets policies =
    let failed = ref false in
    List.iter
      (fun policy ->
        let ctx = Exp.Ctx.make ~scale ~policy ~jobs () in
        let o = Admit_xval.run ~ctx ~sets ~policy () in
        Format.printf "%s: %a@." (Config.policy_name policy)
          Admit_xval.pp_outcome o;
        if o.Admit_xval.disagreements <> [] then failed := true)
      policies;
    if !failed then begin
      Printf.eprintf "admit cross-validate: oracle/simulator disagreement\n";
      exit 2
    end
  in
  Cmd.v (Cmd.info "cross-validate" ~doc ~man)
    Term.(const run $ scale_term $ jobs_term $ sets $ policies)

let admit_cmd =
  let doc = "Analytical admission: exact schedulability with certificates." in
  Cmd.group
    (Cmd.info "admit" ~doc)
    [ admit_query_cmd; admit_batch_cmd; admit_xval_cmd ]

(* ---- admitbench ---- *)

let admitbench_cmd =
  let doc = "Benchmark the admission service: cold vs warm cache, jobs=1 vs N." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Analyzes a randomized corpus once cold (every query runs the \
         exact test), then repeatedly warm (every query is a fingerprint \
         plus a cache hit), sequentially and fanned across $(b,--jobs) \
         domains, reporting queries/sec for each regime. The result is \
         written as JSON to $(b,--out).";
      `P
        "With $(b,--check-against), the measured warm-cache throughput is \
         compared to a committed baseline artifact and the exit status is \
         2 when it regresses by more than $(b,--tolerance) — or when the \
         parallel batch output diverges from the sequential one.";
    ]
  in
  let sets =
    Arg.(
      value & opt int 256
      & info [ "sets" ] ~docv:"N" ~doc:"Distinct task sets in the corpus.")
  in
  let repeats =
    Arg.(
      value & opt int 40
      & info [ "repeats" ] ~docv:"N" ~doc:"Warm passes over the corpus.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_admit.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON artifact.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Small sizes for smoke-testing the harness (CI check.sh).")
  in
  let check_against =
    Arg.(
      value
      & opt (some file) None
      & info [ "check-against" ] ~docv:"FILE"
          ~doc:"Committed baseline artifact to gate against.")
  in
  let tolerance =
    Arg.(
      value
      & opt float 0.2
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:"Allowed fractional warm-q/s regression (default 0.2).")
  in
  let run jobs sets repeats out quick check_against tolerance =
    let sets, repeats = if quick then (48, 6) else (sets, repeats) in
    let jobs = if jobs > 1 then jobs else 4 in
    let r = Admit_bench.measure ~sets ~repeats ~jobs () in
    Printf.printf
      "cold  %9.0f queries/s  (%d sets, exact analysis)\n\
       warm  %9.0f queries/s  (%dx speedup, %d hits / %d misses)\n\
       par   %9.0f queries/s  (jobs=%d, identical=%b)\n"
      r.Admit_bench.cold_qps r.Admit_bench.sets r.Admit_bench.warm_qps
      (int_of_float r.Admit_bench.warm_speedup)
      r.Admit_bench.hits r.Admit_bench.misses r.Admit_bench.par_qps
      r.Admit_bench.jobs r.Admit_bench.identical;
    Admit_bench.write r ~path:out;
    Printf.printf "wrote %s\n" out;
    if not r.Admit_bench.identical then begin
      Printf.eprintf
        "admitbench: parallel batch diverges from sequential output\n";
      exit 2
    end;
    match check_against with
    | None -> ()
    | Some path -> (
      match Admit_bench.check_against r ~path ~tolerance with
      | Ok base ->
        Printf.printf "baseline %s: %.0f queries/s, within tolerance\n" path
          base
      | Error msg ->
        Printf.eprintf "admitbench: %s\n" msg;
        exit 2)
  in
  Cmd.v (Cmd.info "admitbench" ~doc ~man)
    Term.(
      const run $ jobs_term $ sets $ repeats $ out $ quick $ check_against
      $ tolerance)

(* ---- serve ---- *)

let serve_cmd =
  let doc = "Run the admission serving daemon (or a one-shot client)." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Daemon mode (the default) binds a Unix-domain socket (and, with \
         $(b,--tcp), a localhost TCP listener) and answers \
         length-prefixed $(b,hrt1) protocol frames: $(b,query) and \
         $(b,batch) requests carry the same task specs as $(b,hrt_sim \
         admit) and are answered with one $(b,admitted)/$(b,rejected) \
         verdict per set; $(b,stats) reports serving and cache counters; \
         $(b,drain) asks the server to finish and exit. Requests queue in \
         a bounded FIFO drained in batches across $(b,--jobs) worker \
         domains through the memoized admission service.";
      `P
        "Backpressure is admission-themed: when the queue is full new \
         queries are answered $(b,rejected overloaded) immediately (never \
         stalled, never dropped), and a request whose $(b,@ms) deadline \
         passes while queued is answered $(b,rejected expired). SIGTERM \
         drains gracefully: stop accepting, answer everything in flight, \
         flush, emit final stats.";
      `P
        "With $(b,--client), the positional $(i,REQUEST) payloads are \
         sent one RPC each (fresh connection, bounded timeout, jittered \
         exponential backoff up to $(b,--attempts)) and each reply is \
         printed to stdout. Exit status 1 if any request failed or was \
         answered with a protocol error.";
    ]
  in
  let socket =
    Arg.(
      value
      & opt string "hrt-serve.sock"
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Unix-domain socket path to bind (daemon) or connect to \
             (client). A stale socket file is replaced on bind.")
  in
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Daemon: also listen on 127.0.0.1:$(docv) ($(b,0) picks an \
             ephemeral port, printed on boot). Client: connect to \
             127.0.0.1:$(docv) instead of the socket.")
  in
  let client =
    Arg.(
      value & flag
      & info [ "client" ]
          ~doc:"Client mode: send each $(i,REQUEST) and print the reply.")
  in
  let requests =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Client-mode request payloads, e.g. $(b,'query P:1000:300 \
             P:500:100') or $(b,stats).")
  in
  let max_queue =
    Arg.(
      value & opt int 256
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Queued requests beyond which new queries are shed.")
  in
  let max_batch =
    Arg.(
      value & opt int 64
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Requests served per dispatch batch.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request service deadline applied to requests \
             that carry no $(b,@ms) token.")
  in
  let timeout_ms =
    Arg.(
      value & opt int 2000
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Client receive/connect timeout per attempt.")
  in
  let attempts =
    Arg.(
      value & opt int 5
      & info [ "attempts" ] ~docv:"N" ~doc:"Client retry budget per request.")
  in
  let run policy platform raw jobs socket tcp client requests max_queue
      max_batch deadline_ms timeout_ms attempts trace_out metrics_out =
    if client then begin
      let addr =
        match tcp with
        | Some port -> Hrt_serve.Client.Tcp ("127.0.0.1", port)
        | None -> Hrt_serve.Client.Unix_path socket
      in
      if requests = [] then begin
        Printf.eprintf "serve --client: no REQUEST payloads given\n";
        exit 2
      end;
      let failed = ref false in
      List.iter
        (fun payload ->
          match Hrt_serve.Client.call ~attempts ~timeout_ms addr payload with
          | Ok reply ->
            print_endline (Hrt_serve.Protocol.render_reply reply);
            (match reply with
            | Hrt_serve.Protocol.Error_reply _ -> failed := true
            | _ -> ())
          | Error msg ->
            Printf.eprintf "serve --client: %s\n" msg;
            failed := true)
        requests;
      if !failed then exit 1
    end
    else begin
      let jobs =
        if jobs > 1 then jobs
        else Hrt_serve.Server.default_config.Hrt_serve.Server.jobs
      in
      let cfg =
        {
          Hrt_serve.Server.policy;
          platform;
          raw;
          jobs;
          max_queue;
          max_batch;
          max_frame = Hrt_serve.Protocol.default_max_frame;
          default_deadline_ms = deadline_ms;
        }
      in
      let sink =
        match metrics_out with
        | None -> None
        | Some _ -> Some (Hrt_obs.Sink.create ~trace:false ())
      in
      let server =
        Hrt_serve.Server.create ?tcp_port:tcp ?sink ?trace_out ~socket cfg
      in
      (match Hrt_serve.Server.tcp_port server with
      | Some port ->
        Printf.printf "listening on %s and 127.0.0.1:%d\n%!" socket port
      | None -> Printf.printf "listening on %s\n%!" socket);
      Hrt_serve.Server.run ~install_sigterm:true server;
      match (metrics_out, sink) with
      | Some path, Some sink ->
        Hrt_obs.Export.write_metrics_csv (Hrt_obs.Sink.metrics sink) ~path;
        Printf.printf "wrote %s\n" path
      | _ -> ()
    end
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ policy_term $ platform_term $ raw_term $ jobs_term $ socket
      $ tcp $ client $ requests $ max_queue $ max_batch $ deadline_ms
      $ timeout_ms $ attempts $ trace_out_term $ metrics_out_term)

(* ---- servebench ---- *)

let servebench_cmd =
  let doc = "Benchmark the serving daemon end to end: cold vs warm queries/sec." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Boots a real daemon on a private Unix socket in a spawned domain \
         and drives it with the client over a randomized corpus: once \
         cold (every round trip pays a full oracle analysis), then \
         repeatedly warm (framing + fingerprint + cache hit), then in \
         batch frames. Warm replies are compared byte-for-byte to the \
         cold ones. The result is written as JSON to $(b,--out).";
      `P
        "With $(b,--check-against), the measured warm serving throughput \
         is compared to a committed baseline artifact and the exit \
         status is 2 when it regresses by more than $(b,--tolerance) — \
         or when warm replies diverge from cold, or the warm speedup \
         falls below $(b,--min-speedup).";
    ]
  in
  let sets =
    Arg.(
      value & opt int 192
      & info [ "sets" ] ~docv:"N" ~doc:"Distinct task sets in the corpus.")
  in
  let repeats =
    Arg.(
      value & opt int 24
      & info [ "repeats" ] ~docv:"N" ~doc:"Warm passes over the corpus.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_serve.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the JSON artifact.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Small sizes for smoke-testing the harness (CI check.sh).")
  in
  let check_against =
    Arg.(
      value
      & opt (some file) None
      & info [ "check-against" ] ~docv:"FILE"
          ~doc:"Committed baseline artifact to gate against.")
  in
  let tolerance =
    Arg.(
      value
      & opt float 0.2
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:"Allowed fractional warm-q/s regression (default 0.2).")
  in
  let min_speedup =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:
            "Fail (exit 2) when warm/cold throughput falls below \
             $(docv).")
  in
  let run jobs sets repeats out quick check_against tolerance min_speedup =
    let module B = Hrt_serve.Serve_bench in
    let sets, repeats = if quick then (32, 4) else (sets, repeats) in
    let jobs = if jobs > 1 then jobs else 4 in
    let r = B.measure ~sets ~repeats ~jobs () in
    Printf.printf
      "cold  %9.0f queries/s  (%d sets over the wire, exact analysis)\n\
       warm  %9.0f queries/s  (%.1fx speedup, %d hits / %d misses)\n\
       batch %9.0f queries/s  (%d sets per frame, identical=%b, shed=%d)\n"
      r.B.cold_qps r.B.sets r.B.warm_qps r.B.warm_speedup r.B.hits r.B.misses
      r.B.batch_qps r.B.batch_size r.B.identical r.B.shed;
    B.write r ~path:out;
    Printf.printf "wrote %s\n" out;
    if not r.B.identical then begin
      Printf.eprintf "servebench: warm replies diverge from cold replies\n";
      exit 2
    end;
    (match min_speedup with
    | Some floor when r.B.warm_speedup < floor ->
      Printf.eprintf "servebench: warm speedup %.1fx below required %.1fx\n"
        r.B.warm_speedup floor;
      exit 2
    | _ -> ());
    match check_against with
    | None -> ()
    | Some path -> (
      match B.check_against r ~path ~tolerance with
      | Ok base ->
        Printf.printf "baseline %s: %.0f queries/s, within tolerance\n" path
          base
      | Error msg ->
        Printf.eprintf "servebench: %s\n" msg;
        exit 2)
  in
  Cmd.v (Cmd.info "servebench" ~doc ~man)
    Term.(
      const run $ jobs_term $ sets $ repeats $ out $ quick $ check_against
      $ tolerance $ min_speedup)

let () =
  let doc = "Hard real-time scheduling for parallel run-time systems (HPDC'18 reproduction)." in
  let info = Cmd.info "hrt_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            all_cmd;
            bsp_cmd;
            missrate_cmd;
            sweepbench_cmd;
            enginebench_cmd;
            verify_cmd;
            faults_cmd;
            lint_cmd;
            admit_cmd;
            admitbench_cmd;
            serve_cmd;
            servebench_cmd;
          ]))
