(* Command-line driver for the hard real-time scheduling simulator.

   Subcommands:
     list                     enumerate reproducible experiments
     run <names...>           run experiments (figures/ablations) by name
     all                      run everything
     bsp [options]            run one BSP benchmark configuration
     missrate [options]       run one period/slice miss-rate point
     verify <trace.json>      replay a recorded trace through the verifier

   Exit codes: 0 success, 2 verification failure (verify subcommand or
   --selfcheck), anything else is a usage/IO error. *)

open Cmdliner
open Hrt_engine
open Hrt_core
open Hrt_harness

let scale_term =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale parameters (slow).")
  in
  Term.(
    const (fun full -> if full then Exp.Full else Exp.scale_of_env ()) $ full)

let policy_term =
  Arg.(
    value
    & opt (enum [ ("edf", Config.Edf); ("rm", Config.Rm) ]) Config.Edf
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Scheduling policy: $(b,edf) (earliest deadline first, the \
           paper's) or $(b,rm) (rate monotonic with the Liu-Layland \
           admission bound). Drives both admission and dispatch.")

(* ---- observability ---- *)

let trace_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record every scheduler event and write a Chrome-trace JSON file \
           to $(docv) (loadable in chrome://tracing or Perfetto).")

let metrics_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the derived metrics registry as CSV to $(docv).")

let selfcheck_term =
  Arg.(
    value & flag
    & info [ "selfcheck" ]
        ~doc:
          "Run the trace invariant verifier online while the workload \
           executes. Prints a one-line machine-readable verdict on stderr; \
           any violation (including a deadline miss of an admitted \
           real-time task) makes the process exit with status 2.")

(* Install an enabled default sink before the workload runs (so systems
   created inside harnesses pick it up), run, then export whatever was
   requested. Under --selfcheck a verifying checker subscribes to the same
   sink; its verdict decides the exit status. *)
let with_obs ?(selfcheck = false) ~trace_out ~metrics_out f =
  (match (selfcheck, trace_out, metrics_out) with
  | false, None, None -> ()
  | _ ->
    Hrt_obs.Sink.set_default
      (Hrt_obs.Sink.create ~trace:(trace_out <> None) ()));
  let live =
    if selfcheck then Some (Hrt_verify.Live.attach (Hrt_obs.Sink.get_default ()))
    else None
  in
  f ();
  let sink = Hrt_obs.Sink.get_default () in
  (match trace_out with
  | Some path ->
    (match Hrt_obs.Sink.tracer sink with
    | Some tr ->
      Hrt_obs.Export.write_chrome_trace tr ~path;
      Printf.printf "wrote %s (%d events)\n" path (Hrt_obs.Tracer.length tr)
    | None -> ())
  | None -> ());
  (match metrics_out with
  | Some path ->
    Hrt_obs.Export.write_metrics_csv (Hrt_obs.Sink.metrics sink) ~path;
    Printf.printf "wrote %s\n" path
  | None -> ());
  match live with
  | None -> ()
  | Some live ->
    let report = Hrt_verify.Live.report live in
    Printf.eprintf "%s\n%!" (Hrt_verify.Report.verdict_line report);
    if not (Hrt_verify.Report.passed report) then exit 2

(* ---- list ---- *)

let list_cmd =
  let doc = "List the reproducible experiments." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-18s %s\n" e.Registry.name e.Registry.title)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let doc = "Run experiments by name (see $(b,list))." in
  let names =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"NAME" ~doc:"Experiment name.")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each table as CSV into $(docv).")
  in
  let run scale csv_dir trace_out metrics_out selfcheck policy names =
    Exp.set_policy policy;
    with_obs ~selfcheck ~trace_out ~metrics_out (fun () ->
        List.iter
          (fun name ->
            match Registry.find name with
            | Some e -> (
              Registry.run_and_print ~scale e;
              match csv_dir with
              | None -> ()
              | Some dir ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                List.iteri
                  (fun i table ->
                    let path =
                      Filename.concat dir (Printf.sprintf "%s-%d.csv" name i)
                    in
                    Hrt_stats.Csv.write ~path
                      ~header:(Hrt_stats.Table.headers table)
                      (Hrt_stats.Table.to_rows table);
                    Printf.printf "wrote %s\n" path)
                  (e.Registry.run scale))
            | None ->
              Printf.eprintf "unknown experiment %S; try `hrt_sim list`\n" name;
              exit 1)
          names)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ scale_term $ csv_dir $ trace_out_term $ metrics_out_term
      $ selfcheck_term $ policy_term $ names)

(* ---- all ---- *)

let all_cmd =
  let doc = "Run every experiment (the full evaluation section)." in
  let run scale trace_out metrics_out selfcheck =
    with_obs ~selfcheck ~trace_out ~metrics_out (fun () ->
        List.iter (Registry.run_and_print ~scale) Registry.all)
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ scale_term $ trace_out_term $ metrics_out_term
      $ selfcheck_term)

(* ---- bsp ---- *)

let bsp_cmd =
  let doc = "Run one BSP benchmark configuration." in
  let cpus =
    Arg.(value & opt int 24 & info [ "cpus" ] ~doc:"Worker CPUs (paper: 255).")
  in
  let grain =
    Arg.(
      value
      & opt (enum [ ("fine", `Fine); ("coarse", `Coarse) ]) `Fine
      & info [ "grain" ] ~doc:"Granularity: fine or coarse.")
  in
  let barrier =
    Arg.(value & flag & info [ "barrier" ] ~doc:"Keep the per-iteration barrier.")
  in
  let aperiodic =
    Arg.(
      value & flag
      & info [ "aperiodic" ] ~doc:"Non-real-time scheduling (implies --barrier).")
  in
  let period_us =
    Arg.(value & opt int 100 & info [ "period" ] ~doc:"Period in us (RT mode).")
  in
  let slice_pct =
    Arg.(value & opt int 90 & info [ "slice" ] ~doc:"Slice as % of period.")
  in
  let iters =
    Arg.(value & opt int 500 & info [ "iters" ] ~doc:"BSP iterations.")
  in
  let run cpus grain barrier aperiodic period_us slice_pct iters policy
      trace_out metrics_out selfcheck =
    with_obs ~selfcheck ~trace_out ~metrics_out (fun () ->
        let params =
          match grain with
          | `Fine -> Hrt_bsp.Bsp.fine_grain ~cpus ~barrier:(barrier || aperiodic)
          | `Coarse ->
            Hrt_bsp.Bsp.coarse_grain ~cpus ~barrier:(barrier || aperiodic)
        in
        let params = { params with Hrt_bsp.Bsp.iters } in
        let mode =
          if aperiodic then Hrt_bsp.Bsp.Aperiodic
          else begin
            let period = Time.us period_us in
            let slice =
              Int64.div (Int64.mul period (Int64.of_int slice_pct)) 100L
            in
            Hrt_bsp.Bsp.Rt { period; slice; phase_correction = true }
          end
        in
        let r = Hrt_bsp.Bsp.run ~policy params mode in
        Printf.printf
          "exec=%.3f ms  iterations=%d  misses=%d  admitted=%b  checksum=%.0f\n"
          (Time.to_float_ms r.Hrt_bsp.Bsp.exec_time)
          r.Hrt_bsp.Bsp.iterations_done r.Hrt_bsp.Bsp.misses
          r.Hrt_bsp.Bsp.admitted r.Hrt_bsp.Bsp.checksum)
  in
  Cmd.v (Cmd.info "bsp" ~doc)
    Term.(
      const run $ cpus $ grain $ barrier $ aperiodic $ period_us $ slice_pct
      $ iters $ policy_term $ trace_out_term $ metrics_out_term
      $ selfcheck_term)

(* ---- missrate ---- *)

let missrate_cmd =
  let doc = "Measure miss rate for one periodic constraint." in
  let platform =
    Arg.(
      value
      & opt (enum [ ("phi", Hrt_hw.Platform.phi); ("r415", Hrt_hw.Platform.r415) ])
          Hrt_hw.Platform.phi
      & info [ "platform" ] ~doc:"phi or r415.")
  in
  let period_us =
    Arg.(value & opt int 100 & info [ "period" ] ~doc:"Period in us.")
  in
  let slice_pct =
    Arg.(value & opt int 50 & info [ "slice" ] ~doc:"Slice as % of period.")
  in
  let ms =
    Arg.(value & opt int 100 & info [ "duration" ] ~doc:"Simulated ms to run.")
  in
  let run platform period_us slice_pct ms policy trace_out metrics_out
      selfcheck =
    with_obs ~selfcheck ~trace_out ~metrics_out (fun () ->
        let config =
          { Config.default with Config.admission_control = false; policy }
        in
        let sys = Scheduler.create ~num_cpus:2 ~config platform in
        let period = Time.us period_us in
        let slice =
          Int64.div (Int64.mul period (Int64.of_int slice_pct)) 100L
        in
        ignore (Exp.periodic_thread sys ~cpu:1 ~period ~slice ());
        Scheduler.run ~until:(Time.ms ms) sys;
        let acc = Local_sched.account (Scheduler.sched sys 1) in
        Printf.printf
          "platform=%s period=%dus slice=%d%%: arrivals=%d misses=%d \
           rate=%.1f%% mean-miss=%.2fus\n"
          platform.Hrt_hw.Platform.name period_us slice_pct
          (Account.arrivals acc) (Account.misses acc)
          (100. *. Account.miss_rate acc)
          (Hrt_stats.Summary.mean (Account.miss_times_us acc)))
  in
  Cmd.v (Cmd.info "missrate" ~doc)
    Term.(
      const run $ platform $ period_us $ slice_pct $ ms $ policy_term
      $ trace_out_term $ metrics_out_term $ selfcheck_term)

(* ---- verify ---- *)

let verify_cmd =
  let doc = "Replay a recorded trace through the invariant verifier." in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses a Chrome-trace JSON file written by $(b,--trace-out) and \
         checks every scheduler invariant in the catalog: time \
         monotonicity, event causality, per-CPU mutual exclusion, hard \
         real-time soundness, EDF/RM policy conformance, accounting \
         conservation, and group barrier/election safety.";
      `P
        "The full report goes to stdout; a one-line machine-readable \
         verdict goes to stderr. Exit status is 0 when the trace is clean, \
         2 when any rule fired, and 1 when the file cannot be parsed.";
    ]
  in
  let trace =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Chrome-trace JSON file to verify.")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the full verdict report to $(docv).")
  in
  let run trace report_out =
    match Hrt_verify.Verify.file trace with
    | Error msg ->
      Printf.eprintf "hrt_sim verify: %s: %s\n" trace msg;
      exit 1
    | Ok report ->
      print_string (Hrt_verify.Report.to_string report);
      (match report_out with
      | Some path ->
        Hrt_verify.Report.write report ~path;
        Printf.printf "wrote %s\n" path
      | None -> ());
      Printf.eprintf "%s\n%!" (Hrt_verify.Report.verdict_line report);
      if not (Hrt_verify.Report.passed report) then exit 2
  in
  Cmd.v (Cmd.info "verify" ~doc ~man) Term.(const run $ trace $ report_out)

let () =
  let doc = "Hard real-time scheduling for parallel run-time systems (HPDC'18 reproduction)." in
  let info = Cmd.info "hrt_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; all_cmd; bsp_cmd; missrate_cmd; verify_cmd ]))
