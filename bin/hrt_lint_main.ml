(* Standalone lint driver: [hrt_lint [--config FILE] [--root DIR]
   [--verbose] [--summary FILE] [paths...]]. Exits 0 when every finding
   is waived and all budgets hold, 1 on findings, 2 on usage/config
   errors. The same engine backs [hrt_sim lint]. *)

let usage = "hrt_lint [--config FILE] [--root DIR] [--verbose] [paths...]"

let () =
  let config_file = ref "" in
  let root = ref "" in
  let verbose = ref false in
  let all_rules = ref false in
  let summary_file = ref "" in
  let paths = ref [] in
  let spec =
    [
      ("--config", Arg.Set_string config_file, "FILE lint config (default: <root>/.hrt-lint)");
      ("--root", Arg.Set_string root, "DIR repo root (default: nearest ancestor with .hrt-lint)");
      ("--verbose", Arg.Set verbose, " also print waived findings");
      ( "--all-rules",
        Arg.Set all_rules,
        " ignore any config: every family in scope everywhere, no budgets \
         (fixture debugging)" );
      ("--summary", Arg.Set_string summary_file, "FILE also write the summary line to FILE");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  let fail msg =
    prerr_endline ("hrt_lint: " ^ msg);
    exit 2
  in
  let root =
    if !root <> "" then !root
    else if !config_file <> "" then Filename.dirname !config_file
    else if !all_rules then Sys.getcwd ()
    else
      match Hrt_lint.Driver.find_root (Sys.getcwd ()) with
      | Some r -> r
      | None -> fail "no .hrt-lint found in any ancestor directory; pass --root"
  in
  let config =
    if !all_rules then Hrt_lint.Config.all_on
    else
      let config_file =
        if !config_file <> "" then !config_file
        else Filename.concat root ".hrt-lint"
      in
      match Hrt_lint.Config.load config_file with
      | Ok c -> c
      | Error m -> fail m
  in
  let paths = match List.rev !paths with [] -> [ "lib"; "bin" ] | ps -> ps in
  let report = Hrt_lint.Driver.run ~config ~root paths in
  Hrt_lint.Driver.render ~verbose:!verbose stdout report;
  if !summary_file <> "" then
    Out_channel.with_open_text !summary_file (fun oc ->
        output_string oc (Hrt_lint.Driver.summary_line report ^ "\n"));
  exit (if Hrt_lint.Driver.clean report then 0 else 1)
