(* A cyclic executive for a control system — the paper's future work
   ("compiling parallel programs directly into cyclic executives,
   providing real-time behavior by static construction", Section 8).

     dune exec examples/control_system.exe

   Three control loops with harmonic rates are compiled into a static
   frame table; at run time a single executive thread per CPU plays the
   table back. Compare with the EDF path: one admission, one timer
   stream, and deadline misses impossible by construction. *)

open Hrt_engine
open Hrt_core

let jobs =
  [
    { Cyclic.name = "attitude"; period = Time.us 100; slice = Time.us 15 };
    { Cyclic.name = "navigation"; period = Time.us 200; slice = Time.us 30 };
    { Cyclic.name = "telemetry"; period = Time.us 400; slice = Time.us 50 };
  ]

let () =
  (match Cyclic.plan jobs with
  | Error e -> Format.printf "planning failed: %a@." Cyclic.pp_error e
  | Ok table ->
    Printf.printf "hyperperiod: %s   frame: %s   utilization: %.0f%%\n"
      (Format.asprintf "%a" Time.pp (Cyclic.hyperperiod table))
      (Format.asprintf "%a" Time.pp (Cyclic.frame_size table))
      (100. *. Cyclic.utilization table);
    Array.iteri
      (fun i pieces ->
        Printf.printf "  frame %d: %s\n" i
          (if pieces = [] then "(idle)"
           else
             String.concat " -> "
               (List.map
                  (fun (n, s) ->
                    Printf.sprintf "%s(%s)" n (Format.asprintf "%a" Time.pp s))
                  pieces)))
      (Cyclic.frames table);
    (match Cyclic.validate table with
    | Ok () -> print_endline "  table validated: every instance inside its window"
    | Error m -> Printf.printf "  INVALID TABLE: %s\n" m);

    (* Run it for 20 simulated milliseconds. *)
    let sys = Scheduler.create ~num_cpus:2 Hrt_hw.Platform.phi in
    let completions : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let executive =
      Cyclic.spawn sys ~cpu:1 table ~on_job:(fun name _ ->
          Hashtbl.replace completions name
            (1 + Option.value ~default:0 (Hashtbl.find_opt completions name)))
    in
    Scheduler.run ~until:(Time.ms 20) sys;
    print_newline ();
    List.iter
      (fun j ->
        Printf.printf "%-11s ran %4d times (every %s)\n" j.Cyclic.name
          (Option.value ~default:0 (Hashtbl.find_opt completions j.Cyclic.name))
          (Format.asprintf "%a" Time.pp j.Cyclic.period))
      jobs;
    Printf.printf "deadline misses: %d (impossible by construction)\n"
      executive.Thread.misses)
