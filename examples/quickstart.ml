(* Quickstart: boot a simulated Xeon Phi node, run one hard real-time
   thread, and inspect what the scheduler did.

     dune exec examples/quickstart.exe

   A thread starts life aperiodic, then negotiates periodic constraints
   (period 100 us, slice 25 us) through admission control, exactly as a
   Nautilus thread would call nk_sched_thread_change_constraints(). *)

open Hrt_engine
open Hrt_core

let () =
  (* A 4-CPU slice of the Phi platform; CPU 0 is the interrupt-laden
     partition, so we put our thread on CPU 1. *)
  let sys = Scheduler.create ~num_cpus:4 Hrt_hw.Platform.phi in

  let verdict = ref None in
  let constraints =
    Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 25) ()
  in
  let body =
    Program.seq
      [
        (* Charge the admission-control cost, then request the change. The
           callback receives a typed verdict: headroom on success, the
           failed test on rejection. *)
        Program.of_steps
          (Scheduler.admission_ops sys constraints ~on_result:(fun v ->
               verdict := Some v));
        (* ... and from the first arrival on, burn CPU forever: the
           scheduler throttles us to slice/period = 25%. *)
        Program.compute_forever (Time.ms 1);
      ]
  in
  let thread = Scheduler.spawn sys ~name:"quickstart" ~cpu:1 body in

  (* Run 20 simulated milliseconds. *)
  Scheduler.run ~until:(Time.ms 20) sys;

  let account = Local_sched.account (Scheduler.sched sys 1) in
  Printf.printf "admission:           %s\n"
    (match !verdict with
    | None -> "never ran"
    | Some v -> Format.asprintf "%a" Admission.pp_verdict v);
  Printf.printf "arrivals:            %d (one per 100us period)\n"
    (Account.arrivals account);
  Printf.printf "deadline misses:     %d\n" (Account.misses account);
  Printf.printf "CPU time received:   %.2f ms of 20 ms (~25%% by contract)\n"
    (Time.to_float_ms thread.Thread.cpu_time);
  Printf.printf "scheduler overhead:  %.0f cycles/invocation\n"
    (Account.total_overhead_cycles account)
