(* Mixed criticality on one CPU: the full thread/task taxonomy of the
   paper's Section 3.1 living together.

     dune exec examples/mixed_criticality.exe

   - a periodic "control loop" (hard deadline every 250 us);
   - a sporadic "alarm handler" admitted at runtime (2 ms of work before
     an absolute deadline, then demoted to aperiodic);
   - background aperiodic "batch" threads under round-robin;
   - lightweight tasks, size-tagged and untagged: size-tagged tasks are
     run directly by the scheduler when there is room before the next
     real-time arrival, so the control loop never notices them. *)

open Hrt_engine
open Hrt_core

let () =
  let sys = Scheduler.create ~num_cpus:2 Hrt_hw.Platform.phi in

  (* Hard real-time control loop: 50 us every 250 us. *)
  let control_iterations = ref 0 in
  let control =
    Scheduler.spawn sys ~name:"control" ~cpu:1 ~bound:true
      (Program.seq
         [
           Program.of_steps
             (Scheduler.admission_ops sys
                (Constraints.periodic ~period:(Time.us 250) ~slice:(Time.us 50) ())
                ~on_result:(fun v -> assert (Admission.admitted v)));
           Program.forever (fun _ ->
               incr control_iterations;
               Thread.Compute (Time.us 10));
         ])
  in

  (* Batch threads at two priorities. *)
  let batch_work = ref 0 in
  for i = 1 to 3 do
    ignore
      (Scheduler.spawn sys ~name:(Printf.sprintf "batch-%d" i) ~cpu:1
         (Program.forever (fun _ ->
              incr batch_work;
              Thread.Compute (Time.us 100))))
  done;

  
  (* Note: the sporadic reservation is 10% of the CPU, so the density
     size/(deadline - arrival) must stay below it: 800us over 10ms fits. *)
  let alarm_done = ref false in
  ignore
    (Scheduler.spawn sys ~name:"alarm" ~cpu:1 ~prio:5
       (Program.seq
          [
            Program.of_steps [ Thread.Sleep_until (Time.ms 5) ];
            Program.of_thunks
              [
                (fun { Thread.svc; _ } ->
                  let deadline = Time.(svc.Thread.now () + Time.ms 10) in
                  Thread.Set_constraints
                    ( Constraints.sporadic ~size:(Time.us 800) ~deadline
                        ~aper_prio:5 (),
                      fun v -> assert (Admission.admitted v) ));
              ];
            Program.of_steps [ Thread.Compute (Time.us 800) ];
            Program.of_thunks
              [
                (fun _ ->
                  alarm_done := true;
                  Thread.Exit);
              ];
          ]));

  (* Lightweight tasks: 64 size-tagged + 16 untagged. *)
  let tasks_run = ref 0 in
  for _ = 1 to 64 do
    Scheduler.submit_task sys ~cpu:1 ~declared:(Time.us 5) ~duration:(Time.us 4)
      (fun () -> incr tasks_run)
  done;
  for _ = 1 to 16 do
    Scheduler.submit_task sys ~cpu:1 ~duration:(Time.us 30) (fun () ->
        incr tasks_run)
  done;

  Scheduler.run ~until:(Time.ms 50) sys;

  let account = Local_sched.account (Scheduler.sched sys 1) in
  Printf.printf "control loop:   %d iterations, %d deadline misses\n"
    !control_iterations control.Thread.misses;
  Printf.printf "sporadic alarm: completed=%b (800 us of work before its deadline)\n"
    !alarm_done;
  Printf.printf "batch threads:  %d quanta completed in the slack\n" !batch_work;
  Printf.printf "tasks executed: %d of 80 (size-tagged ran inside the scheduler)\n"
    !tasks_run;
  Printf.printf "total arrivals: %d, total misses: %d\n"
    (Account.arrivals account) (Account.misses account)
