(* Performance isolation under time-sharing (the paper's Section 1
   promise: predictable timing as the cornerstone of isolation).

     dune exec examples/isolation.exe

   A parallel real-time application (a 4-thread group at 50% utilization)
   shares the node with an aggressive batch workload: a swarm of aperiodic
   threads that the work stealer spreads over every CPU, plus a noisy
   device showering CPU 0 with interrupts, plus periodic SMIs. The
   real-time application's throughput should not care. *)

open Hrt_engine
open Hrt_core
open Hrt_group
open Hrt_hw

let workers = 4
let horizon = Time.ms 200

(* The RT application: counts the work quanta it completes. *)
let rt_progress = ref 0

let rt_app sys =
  let group = Group.create sys ~name:"app" in
  let barrier = Gbarrier.create sys ~parties:workers in
  let session = ref None in
  let constr =
    Constraints.periodic ~period:(Time.us 200) ~slice:(Time.us 100) ()
  in
  for i = 1 to workers do
    ignore
      (Scheduler.spawn sys ~name:(Printf.sprintf "app-%d" i) ~cpu:i ~bound:true
         (Program.seq
            [
              Group.join group;
              Gbarrier.cross barrier;
              (fun _ ->
                (if !session = None then
                   session := Some (Group_sched.prepare group constr));
                Thread.Exit);
              (let b = ref None in
               fun ctx ->
                 let body =
                   match !b with
                   | Some body -> body
                   | None ->
                     let body =
                       Group_sched.change_constraints (Option.get !session)
                         ~on_result:(fun _ -> ())
                     in
                     b := Some body;
                     body
                 in
                 body ctx);
              Program.forever (fun _ ->
                  incr rt_progress;
                  Thread.Compute (Time.us 20));
            ]))
  done

let batch_noise sys =
  (* 24 unbound aperiodic threads; work stealing spreads them around. *)
  for i = 1 to 24 do
    ignore
      (Scheduler.spawn sys ~name:(Printf.sprintf "batch-%d" i) ~cpu:0
         (Program.forever (fun _ -> Thread.Compute (Time.us 300))))
  done

let device_noise sys =
  let dev =
    Scheduler.add_device sys ~name:"nic" ~mean_interval:(Time.us 80)
      ~handler_cost:(Platform.cost 10_000. 1_000.)
      ()
  in
  Scheduler.steer_device sys dev ~cpus:[ 0 ];
  Scheduler.start_device sys dev

let run ~noisy =
  rt_progress := 0;
  let sys = Scheduler.create ~num_cpus:(workers + 2) Platform.phi in
  rt_app sys;
  if noisy then begin
    batch_noise sys;
    device_noise sys;
    ignore
      (Smi.install (Scheduler.engine sys)
         { Smi.mean_interval = Time.ms 2; duration_mean = Time.us 20; duration_jitter = 0.2 })
  end;
  Scheduler.run ~until:horizon sys;
  let misses = Scheduler.total_misses sys in
  (!rt_progress, misses)

let () =
  let quiet_quanta, quiet_misses = run ~noisy:false in
  let noisy_quanta, noisy_misses = run ~noisy:true in
  Printf.printf "RT app alone on the node:   %6d quanta, %d misses\n"
    quiet_quanta quiet_misses;
  Printf.printf "RT app + batch/IRQ/SMI:     %6d quanta, %d misses\n"
    noisy_quanta noisy_misses;
  Printf.printf "throughput retained:        %.1f%%\n"
    (100. *. float_of_int noisy_quanta /. float_of_int quiet_quanta)
