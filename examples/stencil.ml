(* Barrier removal for a fine-grain BSP stencil (the paper's Section 6
   motivation).

     dune exec examples/stencil.exe

   An iterative stencil over a distributed vector is the classic BSP
   workload: compute local elements, push halo values to the ring
   neighbour, synchronize, repeat. At fine granularity the barrier
   dominates. We run the same computation three ways:

   1. conventional non-real-time scheduling, barrier required;
   2. hard real-time group (80% utilization), barrier kept;
   3. hard real-time group, barrier *removed* — the gang-scheduled,
      phase-corrected threads stay in lock-step purely by time. *)

open Hrt_engine
open Hrt_bsp

let cpus = 32

let show name (r : Bsp.result) =
  Printf.printf "%-34s exec=%7.3f ms  iterations=%d  misses=%d\n" name
    (Time.to_float_ms r.Bsp.exec_time)
    r.Bsp.iterations_done r.Bsp.misses

let () =
  let iters = 400 in
  let params barrier = { (Bsp.fine_grain ~cpus ~barrier) with Bsp.iters } in
  Printf.printf "BSP stencil: %d CPUs, %d iterations, ~%.1f us of work/iter\n\n"
    cpus iters
    (Int64.to_float (Bsp.work_per_iteration Hrt_hw.Platform.phi (params true))
    /. 1000.);
  let rt = Bsp.Rt { period = Time.us 100; slice = Time.us 80; phase_correction = true } in
  let aper = Bsp.run (params true) Bsp.Aperiodic in
  show "aperiodic + barrier (baseline)" aper;
  let with_barrier = Bsp.run (params true) rt in
  show "real-time group 80% + barrier" with_barrier;
  let no_barrier = Bsp.run (params false) rt in
  show "real-time group 80%, NO barrier" no_barrier;
  Printf.printf
    "\nbarrier removal gain: %+.0f%% (vs RT with barrier), %+.0f%% (vs \
     aperiodic baseline)\n"
    ((Time.to_float_ms with_barrier.Bsp.exec_time
     /. Time.to_float_ms no_barrier.Bsp.exec_time
     -. 1.)
    *. 100.)
    ((Time.to_float_ms aper.Bsp.exec_time
     /. Time.to_float_ms no_barrier.Bsp.exec_time
     -. 1.)
    *. 100.)
