(* A miniature OpenMP-style run-time fused with the kernel — the paper's
   Section 8 direction ("adding real-time and barrier removal support to
   ... OpenMP ... run-times").

     dune exec examples/openmp_loops.exe

   The same sequence of fine-grain parallel loops (a Jacobi-style sweep)
   runs three ways:
   1. an aperiodic team joining at a barrier after every loop;
   2. a hard real-time team (90% utilization), still with barriers;
   3. the same real-time team with `Timed synchronization: no barriers at
      all — loop boundaries are implied by the gang schedule. *)

open Hrt_engine
open Hrt_core
open Hrt_runtime

let workers = 16
let loops = 200
let iterations = 256
let iter_cost = Hrt_hw.Platform.cost 1_500. 150.

let run ~label ~mode ~sync =
  let sys = Scheduler.create ~num_cpus:(workers + 1) Hrt_hw.Platform.phi in
  let team =
    Omp.create_team sys ~cpus:(List.init workers (fun i -> i + 1)) ~mode
  in
  let grid = Array.make iterations 0.0 in
  for _ = 1 to loops do
    Omp.parallel_for team ~sync ~iterations ~cost_per_iteration:iter_cost
      (fun i -> grid.(i) <- (grid.(i) *. 0.75) +. 1.0)
  done;
  let t0 = Engine.now (Scheduler.engine sys) in
  Omp.run_to_completion team;
  let elapsed = Time.(Omp.last_completion team - t0) in
  Printf.printf "%-34s %8.3f ms   (loops=%d, checksum=%.1f, misses=%d)\n" label
    (Time.to_float_ms elapsed)
    (Omp.loops_completed team)
    (Array.fold_left ( +. ) 0. grid)
    (Omp.total_misses team);
  Time.to_float_ms elapsed

let () =
  Printf.printf
    "%d workers, %d loops of %d iterations (~%.1f us of work per loop)\n\n"
    workers loops iterations
    (1_500. *. float_of_int (iterations / workers) /. 1_300.);
  let rt = Omp.Realtime { period = Time.us 100; slice = Time.us 90 } in
  let base = run ~label:"aperiodic team + barriers" ~mode:Omp.Aperiodic ~sync:`Barrier in
  let rtb = run ~label:"real-time team (90%) + barriers" ~mode:rt ~sync:`Barrier in
  let timed = run ~label:"real-time team (90%), timed sync" ~mode:rt ~sync:`Timed in
  Printf.printf
    "\nbarrier removal gains: %+.0f%% vs RT+barriers, %+.0f%% vs the \
     aperiodic baseline\n"
    ((rtb /. timed -. 1.) *. 100.)
    ((base /. timed -. 1.) *. 100.)
